#!/bin/bash
# Runs the `campaign` criterion group (the full scan-and-analyze pipeline
# behind the paper's tables) plus the `sweep` worker-scaling group, and
# appends one JSON line per run to BENCH_scan.json so successive PRs leave
# a perf trajectory.
#
# Usage: ./scripts/bench_scan.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_scan.json}
LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

cargo bench --bench paper -- campaign 2>&1 | tee "$LOG"
cargo bench --bench sweep -- sweep 2>&1 | tee -a "$LOG"
cargo bench --bench sweep -- telemetry 2>&1 | tee -a "$LOG"

# criterion text output: "<name>  time: [<low> <unit> <mid> <unit> <high> <unit>]"
extract() {
    awk -v name="$1" '
        $0 ~ name { found = 1 }
        found && /time:/ {
            for (i = 1; i <= NF; i++) {
                if ($i == "time:") {
                    mid = $(i + 3); unit = $(i + 4)
                    if (unit ~ /^ns/) mid /= 1e6
                    else if (unit ~ /^us|^µs/) mid /= 1e3
                    else if (unit ~ /^s/) mid *= 1e3
                    printf "%.3f", mid
                    exit
                }
            }
        }' "$LOG"
}

STATEFUL=$(extract "campaign/stateful_week18")
WEEKLY=$(extract "campaign/weekly_stateless")
W1=$(extract "sweep/workers_1")
W4=$(extract "sweep/workers_4")
W8=$(extract "sweep/workers_8")
UNTRACED=$(extract "telemetry/scan_untraced")
TRACED=$(extract "telemetry/scan_traced")

# targets/s for the telemetry pair: each iteration scans 64 targets
# (TELEMETRY_BENCH_TARGETS in benches/sweep.rs).
pps() {
    [ -n "$1" ] && awk -v ms="$1" 'BEGIN { printf "%.1f", 64 * 1000 / ms }'
}
PPS_OFF=$(pps "${UNTRACED:-}")
PPS_ON=$(pps "${TRACED:-}")

printf '{"date":"%s","commit":"%s","campaign_stateful_ms":%s,"campaign_weekly_ms":%s,"sweep_workers1_ms":%s,"sweep_workers4_ms":%s,"sweep_workers8_ms":%s,"scan_pps_tracing_off":%s,"scan_pps_tracing_on":%s}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "${STATEFUL:-null}" "${WEEKLY:-null}" \
    "${W1:-null}" "${W4:-null}" "${W8:-null}" \
    "${PPS_OFF:-null}" "${PPS_ON:-null}" >> "$OUT"

echo "appended to $OUT:"
tail -1 "$OUT"
